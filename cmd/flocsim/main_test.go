package main

import "testing"

func TestParseRates(t *testing.T) {
	r, err := parseRates("0.4, 2.0,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 || r[0] != 0.4e6 || r[2] != 4e6 {
		t.Fatalf("rates = %v", r)
	}
	if _, err := parseRates("0.4,x"); err == nil {
		t.Fatal("bad rate accepted")
	}
}

func TestParseInts(t *testing.T) {
	v, err := parseInts("1, 8,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[2] != 20 {
		t.Fatalf("ints = %v", v)
	}
	if _, err := parseInts("1,zz"); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestParseSeeds(t *testing.T) {
	s, err := parseSeeds("1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[1] != 2 {
		t.Fatalf("seeds = %v", s)
	}
	if _, err := parseSeeds("a"); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if _, err := run("99", 0.1, 1, "1", "1", "1"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFig4(t *testing.T) {
	tab, err := run("4", 0.1, 1, "1", "1", "1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestParseScenario(t *testing.T) {
	def, atk, err := parseScenario("floc:cbr")
	if err != nil {
		t.Fatal(err)
	}
	if string(def) != "floc" || string(atk) != "cbr" {
		t.Fatalf("parsed %q:%q", def, atk)
	}
	for _, bad := range []string{"floc", ":cbr", "floc:", ""} {
		if _, _, err := parseScenario(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
