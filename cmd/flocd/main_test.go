package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"floc/internal/core"
	"floc/internal/dataplane"
	"floc/internal/ledger"
	"floc/internal/telemetry"
)

func newTestEngine(t *testing.T, reg *telemetry.Registry, shards int) *dataplane.Engine {
	t.Helper()
	rc := core.DefaultConfig(8e6, 512)
	rc.Seed = 7
	e, err := dataplane.New(dataplane.Config{
		Router: rc, Shards: shards, BlockOnFull: true, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateReplayEndToEnd(t *testing.T) {
	var capture bytes.Buffer
	const packets = 5000
	if err := generateCapture(&capture, packets, 7); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	e := newTestEngine(t, reg, 4)
	defer e.Close()
	n, malformed, end, err := replayCapture(bytes.NewReader(capture.Bytes()), e, reg)
	if err != nil {
		t.Fatal(err)
	}
	if n != packets {
		t.Fatalf("replayed %d packets, want %d", n, packets)
	}
	if malformed != 0 {
		t.Fatalf("clean capture reported %d malformed lines", malformed)
	}
	if got := reg.CounterValue("floc_capture_malformed_lines_total"); got != 0 {
		t.Fatalf("malformed counter = %d on a clean capture", got)
	}
	if end <= 0 {
		t.Fatalf("capture end time %v", end)
	}
	e.Advance(end + 10)
	snap := e.Snapshot()
	if snap.Arrived != packets {
		t.Fatalf("router saw %d packets, want %d", snap.Arrived, packets)
	}
	if len(snap.Paths) != 9 {
		t.Fatalf("%d paths, want 9 (8 legitimate + 1 flooder)", len(snap.Paths))
	}
	// The generator's flooding path sends 8x a legitimate path's rate
	// into a congested link; it must absorb the bulk of the drops.
	tally := map[bool][2]int64{}
	for _, p := range snap.Paths {
		v := tally[p.Key == "108-12-1"]
		v[0] += p.AdmittedPackets
		v[1] += p.DroppedPackets
		tally[p.Key == "108-12-1"] = v
	}
	atk, legit := tally[true], tally[false]
	if atk[1] == 0 {
		t.Fatal("flooding path was never dropped; capture did not congest the link")
	}
	if legitRatio, atkRatio := ratio(legit), ratio(atk); legitRatio <= atkRatio {
		t.Fatalf("legitimate admit ratio %.2f not above flooder's %.2f", legitRatio, atkRatio)
	}

	st := e.Stats()
	if st.Processed != packets || st.RingDrops != 0 {
		t.Fatalf("stats %+v after blocking replay of %d", st, packets)
	}

	// The merged run is visible over HTTP in Prometheus text form.
	srv := httptest.NewServer(serveMux(reg, nil, false))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "floc_router_arrived_packets_total") || len(text) < 100 {
		t.Fatalf("/metrics not a populated exposition:\n%.200s", text)
	}
}

func ratio(v [2]int64) float64 {
	if v[0]+v[1] == 0 {
		return 0
	}
	return float64(v[0]) / float64(v[0]+v[1])
}

// TestReplayCountsMalformedLines checks the lenient replay path: bad
// capture lines are skipped, counted in the summary return, and
// published on the malformed-lines counter family — the good records
// around them still replay.
func TestReplayCountsMalformedLines(t *testing.T) {
	var capture bytes.Buffer
	const packets = 100
	if err := generateCapture(&capture, packets, 7); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(capture.String(), "\n"), "\n")
	// Splice breakage between valid records: broken JSON, odd hex, and a
	// decodable-looking frame with an unsupported version byte.
	mangled := []string{
		lines[0],
		`{"t":0.001,"wire":`,       // truncated JSON
		`{"t":0.001,"wire":"abc"}`, // odd hex length
		// A full-size 14-byte header with version 0xff: rejected by the
		// codec proper, not the framing.
		`{"t":0.001,"wire":"ff` + strings.Repeat("00", 13) + `"}`,
	}
	mangled = append(mangled, lines[1:]...)
	input := strings.Join(mangled, "\n") + "\n"

	reg := telemetry.NewRegistry()
	e := newTestEngine(t, reg, 2)
	defer e.Close()
	n, malformed, end, err := replayCapture(strings.NewReader(input), e, reg)
	if err != nil {
		t.Fatal(err)
	}
	if n != packets {
		t.Fatalf("replayed %d packets, want %d despite malformed lines", n, packets)
	}
	if malformed != 3 {
		t.Fatalf("malformed = %d, want 3", malformed)
	}
	e.Advance(end + 1)
	if got := reg.CounterValue("floc_capture_malformed_lines_total"); got != 3 {
		t.Fatalf("total malformed counter = %d, want 3", got)
	}
	if got := reg.CounterValue(`floc_capture_malformed_lines_total{reason="framing"}`); got != 2 {
		t.Fatalf("framing malformed counter = %d, want 2", got)
	}
	if got := reg.CounterValue(`floc_capture_malformed_lines_total{reason="version"}`); got != 1 {
		t.Fatalf("version malformed counter = %d, want 1", got)
	}
}

func TestGenerateCaptureDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := generateCapture(&a, 500, 3); err != nil {
		t.Fatal(err)
	}
	if err := generateCapture(&b, 500, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different captures")
	}
	var c bytes.Buffer
	if err := generateCapture(&c, 500, 4); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical captures")
	}
}

// testOptions mirrors the daemon's flag defaults for in-process runs.
func testOptions() options {
	return options{seed: 1, linkRate: 8e6, capacity: 512, ringSize: 1024,
		batch: 64, traceCap: 65536}
}

func TestRunRejectsAmbiguousModes(t *testing.T) {
	if err := run(testOptions()); err == nil {
		t.Fatal("no mode selected should be an error")
	}
	o := testOptions()
	o.listen, o.replay = ":0", "x.ndjson"
	if err := run(o); err == nil {
		t.Fatal("both modes selected should be an error")
	}
}

// TestLedgerEndToEnd drives the whole forensic loop in-process: generate
// a capture, replay it with -ledger sealing on a sharded engine, then
// verify the sealed evidence and replay it against the claimed snapshot.
func TestLedgerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	capPath := filepath.Join(dir, "capture.ndjson")
	ledgerDir := filepath.Join(dir, "ledger")

	f, err := os.Create(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := generateCapture(f, 5000, 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	o := testOptions()
	o.replay = capPath
	o.shards = 2
	o.ledger = ledgerDir
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}

	rep, events, err := ledger.VerifyCollect(ledgerDir)
	if err != nil {
		t.Fatalf("VerifyCollect: %v", err)
	}
	if rep.Segments == 0 || rep.Events == 0 {
		t.Fatalf("ledger sealed nothing: %+v", rep)
	}
	snap, err := ledger.ReadSnapshot(filepath.Join(ledgerDir, ledger.SnapshotName))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if snap.Arrived != 5000 {
		t.Fatalf("claimed snapshot arrived = %d, want 5000", snap.Arrived)
	}
	if diffs := ledger.Replay(events).Diff(snap); len(diffs) != 0 {
		t.Fatalf("sealed events do not reproduce the claimed snapshot:\n%s",
			strings.Join(diffs, "\n"))
	}

	// A second run into the same directory must refuse to reseal.
	if err := run(o); err == nil {
		t.Fatal("resealing into an existing ledger directory must fail")
	}
}

func TestHealthzReportsDataplane(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTestEngine(t, reg, 2)
	defer e.Close()
	//floclint:allow sim-time the health surface reports real daemon uptime
	h := &health{engine: e, reg: reg, start: time.Now()}
	srv := httptest.NewServer(serveMux(reg, h, true))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Shards != 2 {
		t.Fatalf("healthz = %+v", doc)
	}

	// pprof rides the same listener when enabled.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof endpoint status %d", pp.StatusCode)
	}
}
