// Command flocd runs the FLoc router as a standalone daemon on the
// sharded multi-core dataplane. Packets arrive as wire-encoded shim
// headers (package wire), either over a UDP socket or from an NDJSON
// capture file, are hashed by path identifier onto per-core router
// shards, and the whole engine's telemetry is served as Prometheus text
// on /metrics.
//
// Live mode — one datagram per wire header, arrival-stamped on receipt:
//
//	flocd -listen :9000 -metrics :9100 -link 100e6 -capacity 512
//
// Offline mode — replay a capture hermetically (arrival times come from
// the capture, so results are reproducible and CI-friendly):
//
//	flocd -gen 10000 -out capture.ndjson
//	flocd -replay capture.ndjson -shards 4 -snapshot -print-metrics
//
// -gen writes a synthetic capture (a deterministic mix of legitimate CBR
// paths and one flooding path) so the pipeline can be exercised without
// a packet source.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"floc/internal/core"
	"floc/internal/dataplane"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/rng"
	"floc/internal/telemetry"
	"floc/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "", "UDP address to receive wire-encoded packets on (live mode)")
		replay   = flag.String("replay", "", "NDJSON capture file to replay (offline mode)")
		gen      = flag.Int("gen", 0, "generate a synthetic capture with this many packets and exit")
		out      = flag.String("out", "", "output file for -gen (default stdout)")
		seed     = flag.Uint64("seed", 7, "engine and generator seed")
		shards   = flag.Int("shards", 0, "dataplane shards (0 = one per core)")
		linkRate = flag.Float64("link", 8e6, "protected link rate in bits/s")
		capacity = flag.Int("capacity", 512, "aggregate buffer capacity in packets")
		ringSize = flag.Int("ring", 1024, "per-shard ring capacity in packets (power of two)")
		batch    = flag.Int("batch", 64, "per-shard admission batch size")
		metrics  = flag.String("metrics", "", "HTTP address to serve /metrics on (empty = off)")
		snapshot = flag.Bool("snapshot", false, "print the merged router snapshot at exit")
		printMet = flag.Bool("print-metrics", false, "print the metric registry as Prometheus text at exit")
	)
	flag.Parse()
	if err := run(*listen, *replay, *gen, *out, *seed, *shards, *linkRate, *capacity,
		*ringSize, *batch, *metrics, *snapshot, *printMet); err != nil {
		fmt.Fprintln(os.Stderr, "flocd:", err)
		os.Exit(1)
	}
}

func run(listen, replay string, gen int, out string, seed uint64, shards int,
	linkRate float64, capacity, ringSize, batch int, metrics string,
	snapshot, printMet bool) error {
	if gen > 0 {
		w := io.Writer(os.Stdout)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return generateCapture(w, gen, seed)
	}
	if (listen == "") == (replay == "") {
		return fmt.Errorf("exactly one of -listen or -replay is required (or -gen)")
	}

	reg := telemetry.NewRegistry()
	rc := core.DefaultConfig(linkRate, capacity)
	rc.Seed = seed
	engine, err := dataplane.New(dataplane.Config{
		Router:      rc,
		Shards:      shards,
		RingSize:    ringSize,
		Batch:       batch,
		BlockOnFull: replay != "", // a capture has no real clock: pace, don't drop
		Telemetry:   reg,
	})
	if err != nil {
		return err
	}

	if metrics != "" {
		srv := &http.Server{Addr: metrics, Handler: metricsMux(reg)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "flocd: metrics:", err)
			}
		}()
		defer srv.Close()
	}

	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		n, malformed, end, err := replayCapture(f, engine, reg)
		if err != nil {
			return err
		}
		engine.Advance(end)
		finish(engine, reg, snapshot, printMet)
		fmt.Fprintf(os.Stderr, "flocd: replayed %d packets over %.3fs of capture time on %d shards (%d malformed lines skipped)\n",
			n, end, engine.Shards(), malformed)
		return nil
	}

	conn, err := net.ListenPacket("udp", listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "flocd: listening on %s, %d shards\n", conn.LocalAddr(), engine.Shards())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		conn.Close() // unblocks the read loop
	}()
	if err := serveUDP(conn, engine); err != nil {
		return err
	}
	finish(engine, reg, snapshot, printMet)
	return nil
}

// finish drains the engine and emits the requested end-of-run reports.
func finish(e *dataplane.Engine, reg *telemetry.Registry, snapshot, printMet bool) {
	e.Drain()
	snap := e.Snapshot()
	e.Close()
	if snapshot {
		fmt.Print(snap.String())
		st := e.Stats()
		fmt.Printf("dataplane: accepted=%d ring-drops=%d processed=%d\n",
			st.Accepted, st.RingDrops, st.Processed)
	}
	if printMet {
		_ = reg.WriteText(os.Stdout)
	}
}

// metricsMux routes /metrics to the registry's Prometheus handler.
func metricsMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	return mux
}

// replayCapture streams a capture into the engine, assigning packet IDs
// in capture order and interning path identifiers so per-packet decode
// stays allocation-light. Malformed capture lines are counted and
// skipped, not fatal: one bad line should not void a long replay. The
// count is returned for the run summary and published per error kind as
// floc_capture_malformed_lines_total.
// floc:unit end seconds
func replayCapture(r io.Reader, e *dataplane.Engine, reg *telemetry.Registry) (n int, malformed int64, end float64, err error) {
	cr := wire.NewCaptureReader(bufio.NewReader(r))
	cr.SkipMalformed(true)
	in := wire.NewInterner()
	var h wire.Header
	for {
		t, err := cr.Next(&h)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, cr.Malformed(), end, err
		}
		res := in.ResolveFull(&h)
		if !res.Bound {
			// First packet of this path: intern it with its shard router
			// so every later packet carries the dense handle and the
			// admission path never hashes the path key.
			res.Handle = e.InternPath(res.ID)
			in.BindHandle(&h, res.Handle)
		}
		pkt := &netsim.Packet{}
		h.ToPacket(pkt, uint64(n+1), res.ID, res.Key, res.Handle)
		e.Enqueue(pkt, t)
		n++
		end = t
	}
	publishMalformed(reg, cr.MalformedByKind())
	return n, cr.Malformed(), end, nil
}

// publishMalformed registers the malformed-line counter family: the
// total always (so a clean replay exports an explicit zero), plus one
// reason-labeled series per error kind that fired.
func publishMalformed(reg *telemetry.Registry, byKind [wire.NumErrorKinds]int64) {
	const help = "capture lines skipped as malformed during replay"
	var total int64
	for kind, c := range byKind {
		if c == 0 {
			continue
		}
		total += c
		reg.Counter(`floc_capture_malformed_lines_total{reason="`+wire.ErrorKind(kind).String()+`"}`,
			help, "lines").Add(c)
	}
	reg.Counter("floc_capture_malformed_lines_total", help, "lines").Add(total)
}

// serveUDP reads one wire header per datagram until the connection is
// closed. Arrival times are wall-clock seconds since the first datagram:
// the daemon is the one place the repo meets real time, so the sim-time
// ban is lifted locally.
func serveUDP(conn net.PacketConn, e *dataplane.Engine) error {
	buf := make([]byte, 65536) //floc:untrusted
	in := wire.NewInterner()
	var h wire.Header
	//floclint:allow sim-time live dataplane stamps arrivals from the wall clock
	start := time.Now()
	id := uint64(0)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Closed socket is the clean shutdown path.
			return nil
		}
		//floclint:allow taint ReadFrom returns n <= len(buf) by the PacketConn contract; the payload itself is vetted by Decode
		if _, err := wire.Decode(buf[:n], &h); err != nil {
			continue // malformed datagrams are not the daemon's problem
		}
		res := in.ResolveFull(&h)
		if !res.Bound {
			res.Handle = e.InternPath(res.ID)
			in.BindHandle(&h, res.Handle)
		}
		pkt := &netsim.Packet{}
		id++
		h.ToPacket(pkt, id, res.ID, res.Key, res.Handle)
		//floclint:allow sim-time live dataplane stamps arrivals from the wall clock
		e.Enqueue(pkt, time.Since(start).Seconds())
	}
}

// generateCapture writes a deterministic synthetic capture: nPaths
// legitimate CBR senders plus one flooding path at 8x their rate, over
// enough virtual time to exercise the control loop.
func generateCapture(w io.Writer, packets int, seed uint64) error {
	cw := wire.NewCaptureWriter(w)
	src := rng.New(seed)
	const nPaths = 8
	paths := make([][]pathid.ASN, nPaths+1)
	for i := range paths {
		paths[i] = []pathid.ASN{pathid.ASN(100 + i), pathid.ASN(10 + i%3), 1}
	}
	// Per-tick weights: the last path (the flooder) sends 8 packets for
	// every legitimate path's one.
	t := 0.0
	written := 0
	for written < packets {
		t += 0.002
		for p := 0; p <= nPaths && written < packets; p++ {
			reps := 1
			if p == nPaths {
				reps = 8
			}
			for r := 0; r < reps && written < packets; r++ {
				h := wire.Header{
					Version: wire.Version1,
					Kind:    netsim.KindUDP,
					Src:     uint32(p + 1),
					Dst:     9999,
					Length:  uint16(600 + src.Intn(900)),
					PathLen: uint8(len(paths[p])),
				}
				copy(h.Path[:], paths[p])
				if p == nPaths {
					h.Flags |= wire.FlagAttack
				}
				if err := cw.Write(t, &h); err != nil {
					return err
				}
				written++
			}
		}
	}
	return cw.Flush()
}
