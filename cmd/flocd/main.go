// Command flocd runs the FLoc router as a standalone daemon on the
// sharded multi-core dataplane. Packets arrive as wire-encoded shim
// headers (package wire), either over a UDP socket or from an NDJSON
// capture file, are hashed by path identifier onto per-core router
// shards, and the whole engine's telemetry is served as Prometheus text
// on /metrics.
//
// Live mode — one datagram per wire header, arrival-stamped on receipt:
//
//	flocd -listen :9000 -metrics :9100 -link 100e6 -capacity 512
//
// Offline mode — replay a capture hermetically (arrival times come from
// the capture, so results are reproducible and CI-friendly):
//
//	flocd -gen 10000 -out capture.ndjson
//	flocd -replay capture.ndjson -shards 4 -snapshot -print-metrics
//
// -gen writes a synthetic capture (a deterministic mix of legitimate CBR
// paths and one flooding path) so the pipeline can be exercised without
// a packet source.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"floc/internal/cluster"
	"floc/internal/core"
	"floc/internal/dataplane"
	"floc/internal/ledger"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/rng"
	"floc/internal/telemetry"
	"floc/internal/wire"
)

// options collects the daemon's resolved flags.
type options struct {
	listen   string
	replay   string
	gen      int
	out      string
	seed     uint64
	shards   int
	linkRate float64 //floc:unit bits/s
	capacity int     //floc:unit packets
	ringSize int     //floc:unit packets
	batch    int     //floc:unit packets
	metrics  string
	snapshot bool
	printMet bool
	ledger   string
	traceCap int
	pprof    bool

	routerID uint
	control  string
	peers    string
	forward  string
	sendto   string
	pace     float64 //floc:unit ratio
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "", "UDP address to receive wire-encoded packets on (live mode)")
	flag.StringVar(&o.replay, "replay", "", "NDJSON capture file to replay (offline mode)")
	flag.IntVar(&o.gen, "gen", 0, "generate a synthetic capture with this many packets and exit")
	flag.StringVar(&o.out, "out", "", "output file for -gen (default stdout)")
	flag.Uint64Var(&o.seed, "seed", 7, "engine and generator seed")
	flag.IntVar(&o.shards, "shards", 0, "dataplane shards (0 = one per core)")
	flag.Float64Var(&o.linkRate, "link", 8e6, "protected link rate in bits/s")
	flag.IntVar(&o.capacity, "capacity", 512, "aggregate buffer capacity in packets")
	flag.IntVar(&o.ringSize, "ring", 1024, "per-shard ring capacity in packets (power of two)")
	flag.IntVar(&o.batch, "batch", 64, "per-shard admission batch size")
	flag.StringVar(&o.metrics, "metrics", "", "HTTP address to serve /metrics and /healthz on (empty = off)")
	flag.BoolVar(&o.snapshot, "snapshot", false, "print the merged router snapshot at exit")
	flag.BoolVar(&o.printMet, "print-metrics", false, "print the metric registry as Prometheus text at exit")
	flag.StringVar(&o.ledger, "ledger", "", "directory to seal the forensic event ledger into (must not hold one already)")
	flag.IntVar(&o.traceCap, "trace", 65536, "per-shard event-trace ring capacity (0 = off; losses count on "+telemetry.TraceDroppedMetric+")")
	flag.BoolVar(&o.pprof, "pprof", false, "also serve net/http/pprof on the -metrics listener")
	flag.UintVar(&o.routerID, "router-id", 0, "this daemon's cluster router ID (nonzero enables the control plane)")
	flag.StringVar(&o.control, "control", "", "UDP address to receive cluster control frames on")
	flag.StringVar(&o.peers, "peers", "", "comma-separated upstream control addresses to push feedback to")
	flag.StringVar(&o.forward, "forward", "", "UDP data address to forward transmitted packets to (the next hop's -listen)")
	flag.StringVar(&o.sendto, "sendto", "", "transmit the -replay capture as live datagrams to this UDP address instead of replaying locally")
	flag.Float64Var(&o.pace, "pace", 1.0, "-sendto time scale: real seconds per capture second (0 = no pacing)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "flocd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.gen > 0 {
		w := io.Writer(os.Stdout)
		if o.out != "" {
			f, err := os.Create(o.out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return generateCapture(w, o.gen, o.seed)
	}
	if o.sendto != "" {
		if o.replay == "" {
			return fmt.Errorf("-sendto requires -replay (the capture to transmit)")
		}
		f, err := os.Open(o.replay)
		if err != nil {
			return err
		}
		defer f.Close()
		return sendCapture(f, o.sendto, o.pace)
	}
	if (o.listen == "") == (o.replay == "") {
		return fmt.Errorf("exactly one of -listen or -replay is required (or -gen)")
	}
	if (o.control != "" || o.peers != "") && o.routerID == 0 {
		return fmt.Errorf("-control and -peers require -router-id")
	}
	if o.routerID != 0 && o.listen == "" {
		return fmt.Errorf("cluster mode (-router-id) requires -listen")
	}
	var peers []string
	if o.peers != "" {
		peers = strings.Split(o.peers, ",")
	}

	reg := telemetry.NewRegistry()
	var sealer *ledger.Sealer
	var sink telemetry.EventSink
	if o.ledger != "" {
		s, err := ledger.NewSealer(o.ledger, ledger.SealerOptions{})
		if err != nil {
			return err
		}
		sealer = s
		sink = s
	}
	var egress dataplane.PacketSink
	if o.forward != "" {
		fwd, err := newUDPForwarder(o.forward)
		if err != nil {
			return err
		}
		defer fwd.Close()
		egress = fwd
	}
	rc := core.DefaultConfig(o.linkRate, o.capacity)
	rc.Seed = o.seed
	engine, err := dataplane.New(dataplane.Config{
		Router:        rc,
		Shards:        o.shards,
		RingSize:      o.ringSize,
		Batch:         o.batch,
		BlockOnFull:   o.replay != "", // a capture has no real clock: pace, don't drop
		Telemetry:     reg,
		TraceCapacity: o.traceCap,
		Sink:          sink,
		Egress:        egress,
	})
	if err != nil {
		if sealer != nil {
			sealer.Close()
		}
		return err
	}

	// The daemon's arrival clock: every live timestamp — packet arrivals,
	// control frames, limit leases, health ages — is seconds since this
	// instant, so the clocks of all the daemon's surfaces agree.
	//floclint:allow sim-time the live daemon anchors its arrival clock at startup
	start := time.Now()

	var node *cluster.Node
	if o.routerID != 0 {
		tr := &udpTransport{}
		defer tr.Close()
		node, err = cluster.New(cluster.Config{
			RouterID:   uint32(o.routerID),
			Peers:      peers,
			Transport:  tr,
			Installer:  engine,
			PacketSize: rc.PacketSize,
			Telemetry:  reg,
		})
		if err != nil {
			return err
		}
		if o.control != "" {
			cconn, err := net.ListenPacket("udp", o.control)
			if err != nil {
				return err
			}
			defer cconn.Close()
			go serveControl(cconn, node, start)
			fmt.Fprintf(os.Stderr, "flocd: control on %s, router %d, %d peers\n",
				cconn.LocalAddr(), o.routerID, len(peers))
		}
	}

	if o.metrics != "" {
		h := &health{engine: engine, reg: reg, node: node, start: start}
		srv := &http.Server{Addr: o.metrics, Handler: serveMux(reg, h, o.pprof)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "flocd: metrics:", err)
			}
		}()
		defer srv.Close()
	}

	if o.replay != "" {
		f, err := os.Open(o.replay)
		if err != nil {
			return err
		}
		defer f.Close()
		n, malformed, end, err := replayCapture(f, engine, reg)
		if err != nil {
			return err
		}
		engine.Advance(end)
		snap := finish(engine, reg, o.snapshot, o.printMet)
		if err := sealLedger(sealer, o.ledger, snap); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flocd: replayed %d packets over %.3fs of capture time on %d shards (%d malformed lines skipped)\n",
			n, end, engine.Shards(), malformed)
		return nil
	}

	conn, err := net.ListenPacket("udp", o.listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "flocd: listening on %s, %d shards\n", conn.LocalAddr(), engine.Shards())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		conn.Close() // unblocks the read loop
	}()
	var stopLoop chan struct{}
	if node != nil {
		stopLoop = make(chan struct{})
		go clusterLoop(node, engine, start, stopLoop)
	}
	if err := serveUDP(conn, engine, start); err != nil {
		return err
	}
	if stopLoop != nil {
		close(stopLoop) // quiesce the control loop before draining the engine
	}
	snap := finish(engine, reg, o.snapshot, o.printMet)
	return sealLedger(sealer, o.ledger, snap)
}

// finish drains the engine, emits the requested end-of-run reports, and
// returns the merged final snapshot.
func finish(e *dataplane.Engine, reg *telemetry.Registry, snapshot, printMet bool) core.Snapshot {
	e.Drain()
	snap := e.Snapshot()
	e.Close()
	if snapshot {
		fmt.Print(snap.String())
		st := e.Stats()
		fmt.Printf("dataplane: accepted=%d ring-drops=%d processed=%d\n",
			st.Accepted, st.RingDrops, st.Processed)
	}
	if printMet {
		_ = reg.WriteText(os.Stdout)
	}
	return snap
}

// sealLedger closes the sealer, stores the run's claimed snapshot next to
// the ledger, and logs the chain head — the line to publish out-of-band:
// an anchored head is what makes even a coordinated tail truncation of
// ledger and events files detectable later.
func sealLedger(sealer *ledger.Sealer, dir string, snap core.Snapshot) error {
	if sealer == nil {
		return nil
	}
	if err := sealer.Close(); err != nil {
		return err
	}
	if err := ledger.WriteSnapshot(filepath.Join(dir, ledger.SnapshotName), snap); err != nil {
		return err
	}
	head := sealer.Head()
	fmt.Fprintf(os.Stderr, "flocd: ledger: sealed %d segments (%d events) in %s; head %x\n",
		sealer.Segments(), sealer.Events(), dir, head[:])
	return nil
}

// health serves /healthz: a small JSON liveness document summarizing the
// dataplane since start, cheap enough for a tight probe interval. When
// the daemon is clustered, a cluster block reports the control plane's
// receive state: which origins are feeding it, how stale each one is,
// and how many limits are currently installed.
type health struct {
	engine *dataplane.Engine
	reg    *telemetry.Registry
	node   *cluster.Node
	start  time.Time
}

// clusterHealth is the /healthz cluster block: the node's protocol state
// plus the dataplane's installed-limit count.
type clusterHealth struct {
	cluster.Health
	InstalledLimits int `json:"installed_limits"`
}

func (h *health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	st := h.engine.Stats()
	//floclint:allow sim-time the health surface reports real daemon uptime
	up := time.Since(h.start).Seconds() //floc:unit seconds
	var cb *clusterHealth
	if h.node != nil {
		cb = &clusterHealth{
			Health:          h.node.Health(up),
			InstalledLimits: h.engine.InstalledLimits(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status        string         `json:"status"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Shards        int            `json:"shards"`
		Accepted      int64          `json:"accepted"`
		Processed     int64          `json:"processed"`
		RingDrops     int64          `json:"ring_drops"`
		TraceDropped  int64          `json:"trace_dropped_events"`
		Cluster       *clusterHealth `json:"cluster,omitempty"`
	}{
		Status:        "ok",
		UptimeSeconds: up,
		Shards:        h.engine.Shards(),
		Accepted:      st.Accepted,
		Processed:     st.Processed,
		RingDrops:     st.RingDrops,
		TraceDropped:  h.reg.CounterValue(telemetry.TraceDroppedMetric),
		Cluster:       cb,
	})
}

// serveMux routes the observability listener: /metrics always, /healthz
// when a health source is attached, and the pprof family opt-in (profiling
// endpoints can stall a loaded daemon, so they are never on by default).
func serveMux(reg *telemetry.Registry, h *health, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if h != nil {
		mux.Handle("/healthz", h)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// replayCapture streams a capture into the engine, assigning packet IDs
// in capture order and interning path identifiers so per-packet decode
// stays allocation-light. Malformed capture lines are counted and
// skipped, not fatal: one bad line should not void a long replay. The
// count is returned for the run summary and published per error kind as
// floc_capture_malformed_lines_total.
// floc:unit end seconds
func replayCapture(r io.Reader, e *dataplane.Engine, reg *telemetry.Registry) (n int, malformed int64, end float64, err error) {
	cr := wire.NewCaptureReader(bufio.NewReader(r))
	cr.SkipMalformed(true)
	in := wire.NewInterner()
	var h wire.Header
	for {
		t, err := cr.Next(&h)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, cr.Malformed(), end, err
		}
		res := in.ResolveFull(&h)
		if !res.Bound {
			// First packet of this path: intern it with its shard router
			// so every later packet carries the dense handle and the
			// admission path never hashes the path key.
			res.Handle = e.InternPath(res.ID)
			in.BindHandle(&h, res.Handle)
		}
		pkt := &netsim.Packet{}
		h.ToPacket(pkt, uint64(n+1), res.ID, res.Key, res.Handle)
		e.Enqueue(pkt, t)
		n++
		end = t
	}
	publishMalformed(reg, cr.MalformedByKind())
	return n, cr.Malformed(), end, nil
}

// publishMalformed registers the malformed-line counter family: the
// total always (so a clean replay exports an explicit zero), plus one
// reason-labeled series per error kind that fired.
func publishMalformed(reg *telemetry.Registry, byKind [wire.NumErrorKinds]int64) {
	const help = "capture lines skipped as malformed during replay"
	var total int64
	for kind, c := range byKind {
		if c == 0 {
			continue
		}
		total += c
		reg.Counter(`floc_capture_malformed_lines_total{reason="`+wire.ErrorKind(kind).String()+`"}`,
			help, "lines").Add(c)
	}
	reg.Counter("floc_capture_malformed_lines_total", help, "lines").Add(total)
}

// serveUDP reads one wire header per datagram until the connection is
// closed. Arrival times are wall-clock seconds since the first datagram:
// the daemon is the one place the repo meets real time, so the sim-time
// ban is lifted locally.
func serveUDP(conn net.PacketConn, e *dataplane.Engine, start time.Time) error {
	buf := make([]byte, 65536) //floc:untrusted
	in := wire.NewInterner()
	var h wire.Header
	id := uint64(0)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Closed socket is the clean shutdown path.
			return nil
		}
		//floclint:allow taint ReadFrom returns n <= len(buf) by the PacketConn contract; the payload itself is vetted by Decode
		if _, err := wire.Decode(buf[:n], &h); err != nil {
			continue // malformed datagrams are not the daemon's problem
		}
		res := in.ResolveFull(&h)
		if !res.Bound {
			res.Handle = e.InternPath(res.ID)
			in.BindHandle(&h, res.Handle)
		}
		pkt := &netsim.Packet{}
		id++
		h.ToPacket(pkt, id, res.ID, res.Key, res.Handle)
		//floclint:allow sim-time live dataplane stamps arrivals from the wall clock
		e.Enqueue(pkt, time.Since(start).Seconds())
	}
}

// udpTransport carries cluster control frames: it dials each peer once,
// caches the connected socket, and writes one frame per datagram.
// cluster.Node serializes sends under its own lock, but the transport
// locks anyway so it stays safe if that ever changes.
type udpTransport struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

func (t *udpTransport) Send(peer string, frame []byte) error {
	t.mu.Lock()
	conn := t.conns[peer]
	if conn == nil {
		c, err := net.Dial("udp", peer)
		if err != nil {
			t.mu.Unlock()
			return err
		}
		if t.conns == nil {
			t.conns = map[string]net.Conn{}
		}
		t.conns[peer] = c
		conn = c
	}
	t.mu.Unlock()
	_, err := conn.Write(frame)
	return err
}

func (t *udpTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.conns {
		c.Close()
	}
}

// udpForwarder is the dataplane egress sink for a chained deployment:
// every packet the router transmits is re-encoded as a wire header and
// forwarded to the next hop's data port, so one daemon's egress becomes
// another's ingress (the multi-router tree of the cluster harness).
type udpForwarder struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

func newUDPForwarder(addr string) (*udpForwarder, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &udpForwarder{conn: conn, buf: make([]byte, 0, wire.MaxEncodedLen)}, nil
}

// Emit implements dataplane.PacketSink. Shard workers call it
// concurrently; the mutex serializes the shared encode buffer and the
// socket. Encode and send failures are dropped silently — a forwarding
// daemon must never stall its own transmit loop on the next hop.
// floc:unit now seconds
func (f *udpForwarder) Emit(pkt *netsim.Packet, now float64) {
	var h wire.Header
	if err := wire.FromPacket(&h, pkt); err != nil {
		return
	}
	f.mu.Lock()
	if b, err := wire.MarshalAppend(f.buf[:0], &h); err == nil {
		f.buf = b
		_, _ = f.conn.Write(b)
	}
	f.mu.Unlock()
}

func (f *udpForwarder) Close() { _ = f.conn.Close() }

// serveControl feeds received control frames into the cluster node,
// stamped on the daemon's shared arrival clock. Undecodable frames are
// dropped by HandleFrame; a closed socket ends the loop.
func serveControl(conn net.PacketConn, node *cluster.Node, start time.Time) {
	buf := make([]byte, wire.MaxControlEncodedLen+1) //floc:untrusted
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		//floclint:allow sim-time live control plane stamps arrivals from the wall clock
		now := time.Since(start).Seconds() //floc:unit seconds
		//floclint:allow taint ReadFrom returns n <= len(buf) by the PacketConn contract; the frame itself is vetted by DecodeControl
		_, _ = node.HandleFrame(buf[:n], now)
	}
}

// clusterLoop drives the node's periodic duties on the arrival clock:
// publish fresh feedback derived from the engine snapshot, retransmit
// pending frames, and sweep expired limit leases.
func clusterLoop(node *cluster.Node, e *dataplane.Engine, start time.Time, stop <-chan struct{}) {
	//floclint:allow sim-time the live control loop paces itself on the wall clock
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		//floclint:allow sim-time live control plane stamps publishes from the wall clock
		now := time.Since(start).Seconds() //floc:unit seconds
		node.Publish(e.Snapshot(), now)
		node.Tick(now)
		e.SweepLimits(now)
	}
}

// sendCapture transmits a capture to a daemon's data port as one UDP
// datagram per packet, paced by the capture timestamps scaled by pace
// (real seconds per capture second; 0 disables pacing). This is the
// traffic source of the cluster harness: -gen writes the capture, one
// flocd sends it live, the daemon tree defends against it.
func sendCapture(r io.Reader, addr string, pace float64) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	cr := wire.NewCaptureReader(bufio.NewReader(r))
	cr.SkipMalformed(true)
	var h wire.Header
	buf := make([]byte, 0, wire.MaxEncodedLen)
	//floclint:allow sim-time the paced sender replays capture time on the wall clock
	start := time.Now()
	sent := 0
	for {
		t, err := cr.Next(&h)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if pace > 0 {
			due := time.Duration(t * pace * float64(time.Second))
			//floclint:allow sim-time the paced sender replays capture time on the wall clock
			if d := due - time.Since(start); d > 0 {
				//floclint:allow sim-time the paced sender replays capture time on the wall clock
				time.Sleep(d)
			}
		}
		b, err := wire.MarshalAppend(buf[:0], &h)
		if err != nil {
			continue
		}
		buf = b
		if _, err := conn.Write(b); err != nil {
			return err
		}
		sent++
	}
	fmt.Fprintf(os.Stderr, "flocd: sent %d packets to %s (%d malformed lines skipped)\n",
		sent, addr, cr.Malformed())
	return nil
}

// generateCapture writes a deterministic synthetic capture: nPaths
// legitimate CBR senders plus one flooding path at 8x their rate, over
// enough virtual time to exercise the control loop.
func generateCapture(w io.Writer, packets int, seed uint64) error {
	cw := wire.NewCaptureWriter(w)
	src := rng.New(seed)
	const nPaths = 8
	paths := make([][]pathid.ASN, nPaths+1)
	for i := range paths {
		paths[i] = []pathid.ASN{pathid.ASN(100 + i), pathid.ASN(10 + i%3), 1}
	}
	// Per-tick weights: the last path (the flooder) sends 8 packets for
	// every legitimate path's one.
	t := 0.0
	written := 0
	for written < packets {
		t += 0.002
		for p := 0; p <= nPaths && written < packets; p++ {
			reps := 1
			if p == nPaths {
				reps = 8
			}
			for r := 0; r < reps && written < packets; r++ {
				h := wire.Header{
					Version: wire.Version1,
					Kind:    netsim.KindUDP,
					Src:     uint32(p + 1),
					Dst:     9999,
					Length:  uint16(600 + src.Intn(900)),
					PathLen: uint8(len(paths[p])),
				}
				copy(h.Path[:], paths[p])
				if p == nPaths {
					h.Flags |= wire.FlagAttack
				}
				if err := cw.Write(t, &h); err != nil {
					return err
				}
				written++
			}
		}
	}
	return cw.Flush()
}
