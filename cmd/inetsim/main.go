// Command inetsim runs the paper's Internet-scale evaluation (Section
// VII): Fig. 13 (attackers in 100 ASes), Fig. 14 (attackers in 300 ASes)
// and Fig. 15 (legitimate ASes separated from attack ASes), printing the
// per-class bandwidth shares for ND / FF / FLoc-NA / FLoc-A200 /
// FLoc-A100 on each topology profile.
//
// Usage:
//
//	inetsim -fig 13 [-scale 0.1] [-ticks 600]
//
// Scale 1.0 reproduces the paper's 10,000 legitimate sources, 100,000
// bots and 16,000 packets/tick bottleneck.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"floc"
)

func main() {
	fig := flag.String("fig", "13", "figure: 13, 14, or 15")
	scale := flag.Float64("scale", 0.1, "source/capacity scale in (0,1]")
	ticks := flag.Int("ticks", 0, "simulation ticks (0 = default 600)")
	warmup := flag.Int("warmup", 0, "warmup ticks excluded from measurement (0 = default 200)")
	seed := flag.Uint64("seed", 42, "random seed")
	format := flag.String("format", "tsv", "output format: tsv or json")
	metrics := flag.Bool("metrics", false, "print per-run registry counters in Prometheus text format after the table")
	flag.Parse()

	cfg, err := floc.DefaultInetFigConfig("fig"+*fig, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inetsim:", err)
		os.Exit(2)
	}
	cfg.Ticks = *ticks
	cfg.WarmupTicks = *warmup
	cfg.Seed = *seed
	if *metrics {
		cfg.Registry = floc.NewMetricsRegistry()
	}
	table, err := floc.FigInternet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inetsim:", err)
		os.Exit(1)
	}
	if *format == "json" {
		out, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "inetsim:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(table.String())
	}
	if *metrics {
		fmt.Println()
		if err := cfg.Registry.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "inetsim:", err)
			os.Exit(1)
		}
	}
}
