#!/bin/sh
# check.sh — the repository's full verification gate, run locally before
# pushing and by CI (.github/workflows/ci.yml):
#
#   build        go build ./...
#   format       gofmt -l (fails on any unformatted file)
#   vet          go vet ./...
#   floclint     repo-specific determinism/invariant/units rules
#                (cmd/floclint)
#   fixtures     floclint -fixtures: every fixture WANT marker must be
#                reported and every finding must have a marker, so the
#                seeded-violation corpus cannot drift from the rules;
#                per-rule finding counts resurface in the final summary
#   alloc-gate   testing.AllocsPerRun gates asserting 0 allocs/op on the
#                //floc:hotpath functions reachable without I/O (wire
#                codec, dropfilter ops, router admission, dataplane ring)
#   tests        go test ./...
#   invariants   go test -tags flocinvariants ./... (hot-path assertions on)
#   race         go test -race -short ./... (-short skips the multi-second
#                single-threaded simulations, which race instrumentation
#                slows ~15x past the package timeout)
#   telemetry-overhead
#                BenchmarkFLocRouterEnqueue in the default build (telemetry
#                compiled in but not attached) versus -tags flocnotelemetry
#                (compiled out); fails if the disabled-telemetry hot path
#                costs more than TELEMETRY_OVERHEAD_NS (default 2.0) ns/op
#                over the compiled-out baseline, comparing the median of
#                paired back-to-back runs to damp scheduler noise. The
#                budget is absolute, not a percentage: the contract is
#                "one predicted branch per decision point", whose cost
#                does not shrink when the rest of the admission path
#                speeds up
#   dataplane    wire + dataplane + flocd tests under -race, plus the
#                BenchmarkDataplaneEnqueueSharded throughput curve
#                (1/2/4/8 shards); on a 4+ core runner the 4-shard
#                aggregate throughput must be >= DATAPLANE_SPEEDUP x the
#                1-shard figure (default 2.5)
#   ledger-gate  end-to-end forensic loop: generate a capture, replay it
#                through flocd with -ledger sealing on a sharded engine,
#                then require floctrace verify (Merkle roots, record
#                chain, inclusion proofs) and floctrace replay (sealed
#                events fold to the claimed snapshot) to both pass
#   cluster-gate the cluster control plane end to end through real UDP
#                sockets: a 3-tier flocd chain on loopback (data
#                leaf->mid->root, feedback root->mid->leaf) is fed a
#                flooding capture; the root must originate pushback
#                feedback, the mid must apply and relay it, and the leaf
#                must install the propagated limits and drop flood
#                packets before forwarding
#   perf-gate    scripts/bench-snapshot.sh to a scratch file, compared
#                against the latest committed BENCH_*.json by cmd/perfgate;
#                fails on any family more than PERF_REGRESSION_PCT percent
#                worse (default 10); families new in the fresh snapshot are
#                reported but not gated
#   fuzz smoke   each fuzz target for FUZZTIME (default 10s)
#
# Each stage's wall-clock time is reported in a summary at the end.
#
# Environment:
#   FUZZTIME=10s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing.
#   TELEMETRY_OVERHEAD_NS=2.0
#                  disabled-telemetry overhead budget in ns/op (covers the
#                  guard branch plus code-size/layout effects of the
#                  compiled-in observers, measured ~1 ns on the reference
#                  runner, with margin for pairing noise); set to 0 to
#                  skip the benchmark comparison.
#   DATAPLANE_SPEEDUP=2.5
#                  required 4-shard vs 1-shard enqueue speedup on 4+ core
#                  machines; set to 0 to skip the ratio check.
#   PERF_REGRESSION_PCT=10
#                  allowed per-family regression against the latest
#                  committed BENCH_*.json; set to 0 to skip the perf gate.
set -eu
cd "$(dirname "$0")/.."

run() { echo ">> $*" >&2; "$@"; }

timings=""
stage_name=""
stage_t0=0

begin() {
    stage_name="$1"
    stage_t0=$(date +%s)
}

end() {
    timings="${timings}$(printf '%6ss  %s' "$(($(date +%s) - stage_t0))" "$stage_name")
"
}

begin build
run go build ./...
end

begin format
echo ">> gofmt -l ." >&2
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi
end

begin vet
run go vet ./...
end

begin floclint
run go run ./cmd/floclint ./...
end

begin fixtures
echo ">> go run ./cmd/floclint -fixtures cmd/floclint/testdata/src" >&2
fixtures_out=$(go run ./cmd/floclint -fixtures cmd/floclint/testdata/src)
echo "$fixtures_out" >&2
# The per-rule counts line resurfaces in the stage timing summary so a
# rule whose fixture coverage collapses to zero is visible at a glance.
rule_counts=$(printf '%s\n' "$fixtures_out" | grep '^per-rule fixture findings:' || true)
end

begin alloc-gate
# Dynamic half of the //floc:hotpath contract: testing.AllocsPerRun must
# agree with the static rule that the annotated paths are allocation-free.
run go test -count=1 -run '^TestZeroAlloc' \
    ./internal/wire ./internal/dropfilter ./internal/core ./internal/dataplane
end

begin tests
run go test ./...
end

begin invariants
run go test -tags flocinvariants ./...
end

begin race
run go test -race -short ./...
end

TELEMETRY_OVERHEAD_NS="${TELEMETRY_OVERHEAD_NS:-2.0}"
if [ "$TELEMETRY_OVERHEAD_NS" != "0" ]; then
    begin telemetry-overhead
    echo ">> telemetry-overhead: BenchmarkFLocRouterEnqueue default vs -tags flocnotelemetry" >&2
    run go test -c -o /tmp/floc-bench-default.test .
    run go test -tags flocnotelemetry -c -o /tmp/floc-bench-notel.test .
    # Paired comparison: the builds alternate back-to-back, each pair
    # yields one absolute overhead delta in ns/op, and the median delta
    # is the verdict. Pairing cancels machine phase drift (a slow phase
    # hits both sides of a pair) and the median rejects outlier pairs,
    # which single-shot or min-of-N comparisons of two separate binaries
    # cannot. The budget is absolute because the guarded branch costs a
    # fixed number of cycles: a percentage budget silently tightens
    # every time the admission path itself gets faster.
    bench_once() {
        ns=$("$1" -test.run='^$' -test.bench='^BenchmarkFLocRouterEnqueue$' \
            -test.benchtime=2000000x 2>/dev/null |
            awk '/^BenchmarkFLocRouterEnqueue/ { print $3; exit }')
        [ -n "$ns" ] || { echo "telemetry-overhead: no benchmark output from $1" >&2; exit 1; }
        echo "$ns"
    }
    overheads="" i=0
    while [ $i -lt 7 ]; do
        base=$(bench_once /tmp/floc-bench-notel.test)
        cur=$(bench_once /tmp/floc-bench-default.test)
        overheads="$overheads $(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%.3f", c - b }')"
        i=$((i + 1))
    done
    rm -f /tmp/floc-bench-default.test /tmp/floc-bench-notel.test
    echo "   pair overheads (ns/op):$overheads" >&2
    echo "$overheads" | tr ' ' '\n' | grep -v '^$' | sort -n |
        awk -v p="$TELEMETRY_OVERHEAD_NS" '
            { a[NR] = $1 }
            END {
                med = a[int((NR + 1) / 2)]
                printf "   median disabled-telemetry overhead %+.3f ns/op (budget %s ns/op)\n", med, p > "/dev/stderr"
                exit med > p ? 1 : 0
            }' || {
        echo "telemetry-overhead: disabled-telemetry hot path exceeds ${TELEMETRY_OVERHEAD_NS} ns/op budget" >&2
        exit 1
    }
    end
fi

begin dataplane
run go test -race -count=1 ./internal/wire ./internal/dataplane ./cmd/flocd
bench_out=$(go test -run='^$' -bench='^BenchmarkDataplaneEnqueueSharded$' \
    -benchtime=200000x ./internal/dataplane)
echo "$bench_out" | grep '^Benchmark' >&2
DATAPLANE_SPEEDUP="${DATAPLANE_SPEEDUP:-2.5}"
# go env GOMAXPROCS prints empty on toolchains that don't surface it;
# fall back through the portable cpu-count sources.
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$DATAPLANE_SPEEDUP" != "0" ] && [ "$ncpu" -ge 4 ]; then
    echo "$bench_out" | awk -v want="$DATAPLANE_SPEEDUP" '
        /shards=1/ { one = $3 }
        /shards=4/ { four = $3 }
        END {
            if (one == "" || four == "") { print "dataplane: benchmark output missing shard points" > "/dev/stderr"; exit 1 }
            ratio = one / four
            printf "   4-shard vs 1-shard enqueue speedup: %.2fx (required %.1fx)\n", ratio, want > "/dev/stderr"
            exit ratio >= want ? 0 : 1
        }' || {
        echo "dataplane: 4-shard speedup below ${DATAPLANE_SPEEDUP}x" >&2
        exit 1
    }
else
    echo "   speedup gate skipped (cpus=$ncpu < 4 or DATAPLANE_SPEEDUP=0)" >&2
fi
end

begin ledger-gate
# The forensic loop, end to end through the real binaries: seal a replay,
# then verify and replay the sealed evidence. Sealing rides inside the
# telemetry budget because it only runs when -ledger is given and hashes
# at control-run boundaries, never on the admission path (floclint's
# hotpath rule enforces the latter statically).
ledger_tmp=$(mktemp -d "${TMPDIR:-/tmp}/floc-ledger-XXXXXX")
run go build -o "$ledger_tmp/flocd" ./cmd/flocd
run go build -o "$ledger_tmp/floctrace" ./cmd/floctrace
run "$ledger_tmp/flocd" -gen 20000 -out "$ledger_tmp/capture.ndjson"
run "$ledger_tmp/flocd" -replay "$ledger_tmp/capture.ndjson" -shards 2 \
    -trace 65536 -ledger "$ledger_tmp/ledger"
run "$ledger_tmp/floctrace" verify -ledger "$ledger_tmp/ledger"
run "$ledger_tmp/floctrace" replay -ledger "$ledger_tmp/ledger"
rm -rf "$ledger_tmp"
end

begin cluster-gate
# The multi-router story, end to end through real sockets: traffic enters
# at the leaf daemon, is forwarded hop by hop to the root whose 20 Mb/s
# link is the bottleneck, and the resulting pushback limits must
# propagate the opposite way — root originates control frames, mid
# applies and relays them, leaf installs the limits and sheds the flood
# before forwarding. Every assertion reads the daemons' own /metrics
# through topogen -probe (no curl dependency).
cluster_tmp=$(mktemp -d "${TMPDIR:-/tmp}/floc-cluster-XXXXXX")
run go build -o "$cluster_tmp/flocd" ./cmd/flocd
run go build -o "$cluster_tmp/topogen" ./cmd/topogen
run "$cluster_tmp/flocd" -gen 64000 -out "$cluster_tmp/capture.ndjson"
"$cluster_tmp/flocd" -listen 127.0.0.1:19103 -router-id 3 -peers 127.0.0.1:19202 \
    -link 20e6 -metrics 127.0.0.1:19303 2>"$cluster_tmp/root.log" &
cluster_root=$!
"$cluster_tmp/flocd" -listen 127.0.0.1:19102 -router-id 2 -control 127.0.0.1:19202 \
    -peers 127.0.0.1:19201 -forward 127.0.0.1:19103 -link 100e6 \
    -metrics 127.0.0.1:19302 2>"$cluster_tmp/mid.log" &
cluster_mid=$!
"$cluster_tmp/flocd" -listen 127.0.0.1:19101 -router-id 1 -control 127.0.0.1:19201 \
    -forward 127.0.0.1:19102 -link 100e6 \
    -metrics 127.0.0.1:19301 2>"$cluster_tmp/leaf.log" &
cluster_leaf=$!
cluster_up() { # cluster_up <metrics port>
    i=0
    until "$cluster_tmp/topogen" -probe "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "cluster-gate: daemon on port $1 never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
}
cluster_up 19301; cluster_up 19302; cluster_up 19303
run "$cluster_tmp/flocd" -replay "$cluster_tmp/capture.ndjson" \
    -sendto 127.0.0.1:19101 -pace 0.3
sleep 1 # one more publish interval, so in-flight feedback lands
# metric_sum <metrics port> <series prefix> — sum every matching series,
# so the assertions hold at any shard count.
metric_sum() {
    "$cluster_tmp/topogen" -probe "http://127.0.0.1:$1/metrics" |
        awk -v p="$2" 'index($1, p) == 1 { s += $2 } END { print s + 0 }'
}
assert_pos() { # assert_pos <description> <value>
    echo "   $1 = $2" >&2
    awk -v v="$2" 'BEGIN { exit v + 0 > 0 ? 0 : 1 }' || {
        echo "cluster-gate: $1 must be > 0" >&2
        exit 1
    }
}
assert_pos "root: feedback frames sent" \
    "$(metric_sum 19303 'floc_cluster_feedback_sent_total')"
assert_pos "mid: records applied from root (origin 3)" \
    "$(metric_sum 19302 'floc_cluster_feedback_applied_total{peer="3"}')"
assert_pos "mid: installed limits" \
    "$(metric_sum 19302 'floc_cluster_installed_limits')"
assert_pos "mid: feedback frames relayed to leaf" \
    "$(metric_sum 19302 'floc_cluster_feedback_sent_total')"
assert_pos "leaf: records applied from mid (origin 2)" \
    "$(metric_sum 19301 'floc_cluster_feedback_applied_total{peer="2"}')"
assert_pos "leaf: installed limits" \
    "$(metric_sum 19301 'floc_cluster_installed_limits')"
assert_pos "leaf: flood packets shed by propagated limits" \
    "$(metric_sum 19301 'floc_cluster_limit_dropped_total')"
kill -INT "$cluster_leaf" "$cluster_mid" "$cluster_root" 2>/dev/null || true
wait "$cluster_leaf" "$cluster_mid" "$cluster_root" 2>/dev/null || true
rm -rf "$cluster_tmp"
end

PERF_REGRESSION_PCT="${PERF_REGRESSION_PCT:-10}"
if [ "$PERF_REGRESSION_PCT" != "0" ]; then
    begin perf-gate
    # Latest committed snapshot by sequence number (BENCH_0, BENCH_1, ...).
    baseline=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
    if [ -z "$baseline" ]; then
        echo "   perf-gate skipped (no committed BENCH_*.json baseline)" >&2
    else
        fresh=$(mktemp "${TMPDIR:-/tmp}/floc-bench-XXXXXX")
        # Best-of-5 rather than the snapshot default of 3: the gate
        # compares minima, and the min of a noisy family (the batch
        # benchmarks swing ~15% run to run on a shared runner) only
        # converges near the floor with the extra samples.
        BENCH_RUNS="${BENCH_RUNS:-5}" run scripts/bench-snapshot.sh "$fresh"
        run go run ./cmd/perfgate -old "$baseline" -new "$fresh" -pct "$PERF_REGRESSION_PCT"
        rm -f "$fresh"
    fi
    end
fi

FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    begin "fuzz ($FUZZTIME/target)"
    run go test -run='^$' -fuzz='^FuzzFilterOps$' -fuzztime "$FUZZTIME" ./internal/dropfilter
    run go test -run='^$' -fuzz='^FuzzTreeOps$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzParseKey$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzCapability$' -fuzztime "$FUZZTIME" ./internal/capability
    run go test -run='^$' -fuzz='^FuzzWireDecode$' -fuzztime "$FUZZTIME" ./internal/wire
    run go test -run='^$' -fuzz='^FuzzWireRoundTrip$' -fuzztime "$FUZZTIME" ./internal/wire
    run go test -run='^$' -fuzz='^FuzzControlFrameDecode$' -fuzztime "$FUZZTIME" ./internal/wire
    end
fi

echo "check.sh: all gates passed; stage timings:" >&2
printf '%s' "$timings" >&2
if [ -n "${rule_counts:-}" ]; then
    echo "$rule_counts" >&2
fi
