#!/bin/sh
# check.sh — the repository's full verification gate, run locally before
# pushing and by CI (.github/workflows/ci.yml):
#
#   build        go build ./...
#   format       gofmt -l (fails on any unformatted file)
#   vet          go vet ./...
#   floclint     repo-specific determinism/invariant/units rules
#                (cmd/floclint)
#   fixtures     floclint -fixtures: every fixture WANT marker must be
#                reported and every finding must have a marker, so the
#                seeded-violation corpus cannot drift from the rules
#   tests        go test ./...
#   invariants   go test -tags flocinvariants ./... (hot-path assertions on)
#   race         go test -race -short ./... (-short skips the multi-second
#                single-threaded simulations, which race instrumentation
#                slows ~15x past the package timeout)
#   fuzz smoke   each fuzz target for FUZZTIME (default 10s)
#
# Each stage's wall-clock time is reported in a summary at the end.
#
# Environment:
#   FUZZTIME=10s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing.
set -eu
cd "$(dirname "$0")/.."

run() { echo ">> $*" >&2; "$@"; }

timings=""
stage_name=""
stage_t0=0

begin() {
    stage_name="$1"
    stage_t0=$(date +%s)
}

end() {
    timings="${timings}$(printf '%6ss  %s' "$(($(date +%s) - stage_t0))" "$stage_name")
"
}

begin build
run go build ./...
end

begin format
echo ">> gofmt -l ." >&2
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi
end

begin vet
run go vet ./...
end

begin floclint
run go run ./cmd/floclint ./...
end

begin fixtures
run go run ./cmd/floclint -fixtures cmd/floclint/testdata/src
end

begin tests
run go test ./...
end

begin invariants
run go test -tags flocinvariants ./...
end

begin race
run go test -race -short ./...
end

FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    begin "fuzz ($FUZZTIME/target)"
    run go test -run='^$' -fuzz='^FuzzFilterOps$' -fuzztime "$FUZZTIME" ./internal/dropfilter
    run go test -run='^$' -fuzz='^FuzzTreeOps$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzParseKey$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzCapability$' -fuzztime "$FUZZTIME" ./internal/capability
    end
fi

echo "check.sh: all gates passed; stage timings:" >&2
printf '%s' "$timings" >&2
