#!/bin/sh
# check.sh — the repository's full verification gate, run locally before
# pushing and by CI (.github/workflows/ci.yml):
#
#   build        go build ./...
#   format       gofmt -l (fails on any unformatted file)
#   vet          go vet ./...
#   floclint     repo-specific determinism/invariant rules (cmd/floclint)
#   tests        go test ./...
#   invariants   go test -tags flocinvariants ./... (hot-path assertions on)
#   race         go test -race -short ./... (-short skips the multi-second
#                single-threaded simulations, which race instrumentation
#                slows ~15x past the package timeout)
#   fuzz smoke   each fuzz target for FUZZTIME (default 10s)
#
# Environment:
#   FUZZTIME=10s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing.
set -eu
cd "$(dirname "$0")/.."

run() { echo ">> $*" >&2; "$@"; }

run go build ./...

echo ">> gofmt -l ." >&2
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi

run go vet ./...
run go run ./cmd/floclint ./...
run go test ./...
run go test -tags flocinvariants ./...
run go test -race -short ./...

FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    run go test -run='^$' -fuzz='^FuzzFilterOps$' -fuzztime "$FUZZTIME" ./internal/dropfilter
    run go test -run='^$' -fuzz='^FuzzTreeOps$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzParseKey$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzCapability$' -fuzztime "$FUZZTIME" ./internal/capability
fi

echo "check.sh: all gates passed" >&2
