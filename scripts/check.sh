#!/bin/sh
# check.sh — the repository's full verification gate, run locally before
# pushing and by CI (.github/workflows/ci.yml):
#
#   build        go build ./...
#   format       gofmt -l (fails on any unformatted file)
#   vet          go vet ./...
#   floclint     repo-specific determinism/invariant/units rules
#                (cmd/floclint)
#   fixtures     floclint -fixtures: every fixture WANT marker must be
#                reported and every finding must have a marker, so the
#                seeded-violation corpus cannot drift from the rules
#   tests        go test ./...
#   invariants   go test -tags flocinvariants ./... (hot-path assertions on)
#   race         go test -race -short ./... (-short skips the multi-second
#                single-threaded simulations, which race instrumentation
#                slows ~15x past the package timeout)
#   telemetry-overhead
#                BenchmarkFLocRouterEnqueue in the default build (telemetry
#                compiled in but not attached) versus -tags flocnotelemetry
#                (compiled out); fails if the disabled-telemetry hot path
#                costs more than TELEMETRY_OVERHEAD_PCT (default 3) percent
#                over the compiled-out baseline, comparing the median of
#                paired back-to-back runs to damp scheduler noise
#   fuzz smoke   each fuzz target for FUZZTIME (default 10s)
#
# Each stage's wall-clock time is reported in a summary at the end.
#
# Environment:
#   FUZZTIME=10s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing.
#   TELEMETRY_OVERHEAD_PCT=3
#                  disabled-telemetry overhead budget in percent; set to 0
#                  to skip the benchmark comparison.
set -eu
cd "$(dirname "$0")/.."

run() { echo ">> $*" >&2; "$@"; }

timings=""
stage_name=""
stage_t0=0

begin() {
    stage_name="$1"
    stage_t0=$(date +%s)
}

end() {
    timings="${timings}$(printf '%6ss  %s' "$(($(date +%s) - stage_t0))" "$stage_name")
"
}

begin build
run go build ./...
end

begin format
echo ">> gofmt -l ." >&2
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi
end

begin vet
run go vet ./...
end

begin floclint
run go run ./cmd/floclint ./...
end

begin fixtures
run go run ./cmd/floclint -fixtures cmd/floclint/testdata/src
end

begin tests
run go test ./...
end

begin invariants
run go test -tags flocinvariants ./...
end

begin race
run go test -race -short ./...
end

TELEMETRY_OVERHEAD_PCT="${TELEMETRY_OVERHEAD_PCT:-3}"
if [ "$TELEMETRY_OVERHEAD_PCT" != "0" ]; then
    begin telemetry-overhead
    echo ">> telemetry-overhead: BenchmarkFLocRouterEnqueue default vs -tags flocnotelemetry" >&2
    run go test -c -o /tmp/floc-bench-default.test .
    run go test -tags flocnotelemetry -c -o /tmp/floc-bench-notel.test .
    # Paired comparison: the builds alternate back-to-back, each pair
    # yields one overhead ratio, and the median ratio is the verdict.
    # Pairing cancels machine phase drift (a slow phase hits both sides
    # of a pair) and the median rejects outlier pairs, which single-shot
    # or min-of-N comparisons of two separate binaries cannot.
    bench_once() {
        ns=$("$1" -test.run='^$' -test.bench='^BenchmarkFLocRouterEnqueue$' \
            -test.benchtime=2000000x 2>/dev/null |
            awk '/^BenchmarkFLocRouterEnqueue/ { print $3; exit }')
        [ -n "$ns" ] || { echo "telemetry-overhead: no benchmark output from $1" >&2; exit 1; }
        echo "$ns"
    }
    overheads="" i=0
    while [ $i -lt 7 ]; do
        base=$(bench_once /tmp/floc-bench-notel.test)
        cur=$(bench_once /tmp/floc-bench-default.test)
        overheads="$overheads $(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%.3f", (c - b) / b * 100 }')"
        i=$((i + 1))
    done
    rm -f /tmp/floc-bench-default.test /tmp/floc-bench-notel.test
    echo "   pair overheads (%):$overheads" >&2
    echo "$overheads" | tr ' ' '\n' | grep -v '^$' | sort -n |
        awk -v p="$TELEMETRY_OVERHEAD_PCT" '
            { a[NR] = $1 }
            END {
                med = a[int((NR + 1) / 2)]
                printf "   median disabled-telemetry overhead %+.2f%% (budget %s%%)\n", med, p > "/dev/stderr"
                exit med > p ? 1 : 0
            }' || {
        echo "telemetry-overhead: disabled-telemetry hot path exceeds ${TELEMETRY_OVERHEAD_PCT}% budget" >&2
        exit 1
    }
    end
fi

FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
    begin "fuzz ($FUZZTIME/target)"
    run go test -run='^$' -fuzz='^FuzzFilterOps$' -fuzztime "$FUZZTIME" ./internal/dropfilter
    run go test -run='^$' -fuzz='^FuzzTreeOps$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzParseKey$' -fuzztime "$FUZZTIME" ./internal/pathid
    run go test -run='^$' -fuzz='^FuzzCapability$' -fuzztime "$FUZZTIME" ./internal/capability
    end
fi

echo "check.sh: all gates passed; stage timings:" >&2
printf '%s' "$timings" >&2
