#!/bin/sh
# Regenerates every figure TSV in results/ at the default reduced scale
# (-scale 0.1; see EXPERIMENTS.md). Full paper scale: pass SCALE=1.0.
# Total runtime: ~20 min at 0.1, a few hours at 1.0.
set -eu
cd "$(dirname "$0")/.."
SCALE="${SCALE:-0.1}"
mkdir -p results

run() { echo ">> $*" >&2; "$@"; }

run go run ./cmd/flocsim -fig 2  -scale "$SCALE" > results/fig2.tsv
run go run ./cmd/flocsim -fig 3  -scale "$SCALE" > results/fig3.tsv
run go run ./cmd/flocsim -fig 4                   > results/fig4.tsv
run go run ./cmd/flocsim -fig 6a -scale "$SCALE" > results/fig6a.tsv
run go run ./cmd/flocsim -fig 6b -scale "$SCALE" > results/fig6b.tsv
run go run ./cmd/flocsim -fig 6c -scale "$SCALE" > results/fig6c.tsv
run go run ./cmd/flocsim -fig 7  -scale "$SCALE" -rates 0.4,2.0,4.0 > results/fig7.tsv
run go run ./cmd/flocsim -fig 8  -scale "$SCALE" -rates 0.2,0.4,0.8,1.6,2.4,3.2,4.0 > results/fig8.tsv
run go run ./cmd/flocsim -fig 9  -scale 0.3      > results/fig9.tsv
run go run ./cmd/flocsim -fig 10 -scale "$SCALE" -fanouts 1,4,8,12,20 > results/fig10.tsv
run go run ./cmd/topogen -kind inet -attack-ases 100 > results/fig11.tsv
run go run ./cmd/topogen -kind inet -attack-ases 300 > results/fig12.tsv
run go run ./cmd/inetsim -fig 13 -scale "$SCALE" > results/fig13.tsv
run go run ./cmd/inetsim -fig 14 -scale "$SCALE" > results/fig14.tsv
run go run ./cmd/inetsim -fig 15 -scale "$SCALE" > results/fig15.tsv
# Extensions beyond the paper.
run go run ./cmd/flocsim -fig timed  -scale "$SCALE" > results/fig-timed.tsv
run go run ./cmd/flocsim -fig deploy -scale "$SCALE" > results/fig-deploy.tsv
run go run ./cmd/flocsim -fig rep    -scale "$SCALE" -seeds 1,2,3 > results/fig-rep.tsv
echo "done: results/" >&2
