#!/bin/sh
# bench-snapshot.sh — run the canonical performance benchmarks and emit a
# machine-readable snapshot, seeding the ROADMAP's perf trajectory
# (BENCH_0.json, BENCH_1.json, ... as the hot-path campaign progresses).
#
# Families captured:
#   router_enqueue       BenchmarkFLocRouterEnqueue       ns/op (admission path)
#   router_enqueue_batch BenchmarkFLocRouterEnqueueBatch  ns/op at batch
#                        16/64/256 (handle-stamped batched admission)
#   dataplane_sharded    BenchmarkDataplaneEnqueueSharded ns/op and Mpps at
#                        1/2/4/8 shards (whole-pipeline enqueue-to-admission)
#   dropfilter_update    BenchmarkFilterUpdate            ns/op (RecordDrop)
#   dropfilter_locality  BenchmarkFilterLocality          ns/op (blocked-layout
#                        record+query over an 8 MiB working set)
#   wire_decode          BenchmarkWireDecode              ns/op (codec)
#   feedback_encode      BenchmarkControlEncode           ns/op (cluster
#                        control-frame marshal, the Publish hot loop)
#   limit_install        BenchmarkLimitInstall            ns/op (one
#                        InstallLimit command barrier round trip)
#
# Usage: scripts/bench-snapshot.sh [output.json]   (default BENCH_0.json)
#
# Environment:
#   BENCHTIME=1s    per-benchmark budget (go test -benchtime).
#   BENCH_RUNS=3    samples per benchmark (go test -count); the snapshot
#                   records the best (minimum) ns/op of the runs. A single
#                   1-second sample on a busy 1-CPU runner wanders by
#                   double-digit percentages; the minimum is the stable
#                   estimator of the code's actual cost.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_0.json}"
BENCHTIME="${BENCHTIME:-1s}"
BENCH_RUNS="${BENCH_RUNS:-3}"

bench() { # bench <pkg> <regexp>
    echo ">> go test -run='^$' -bench='$2' -benchtime=$BENCHTIME -count=$BENCH_RUNS $1" >&2
    # Echo through the inherited stderr fd rather than tee /dev/stderr:
    # reopening /dev/stderr gets an independent file offset (and tee
    # truncates), which clobbers earlier output when stderr is a
    # redirected log file (CI) instead of a terminal.
    raw=$(go test -run='^$' -bench="$2" -benchtime="$BENCHTIME" -count="$BENCH_RUNS" "$1")
    printf '%s\n' "$raw" >&2
    printf '%s\n' "$raw" | grep '^Benchmark'
}

router=$(bench . '^BenchmarkFLocRouterEnqueue$')
batch=$(bench . '^BenchmarkFLocRouterEnqueueBatch$')
sharded=$(bench ./internal/dataplane '^BenchmarkDataplaneEnqueueSharded$')
filter=$(bench ./internal/dropfilter '^BenchmarkFilterUpdate$')
locality=$(bench ./internal/dropfilter '^BenchmarkFilterLocality$')
wire=$(bench ./internal/wire '^BenchmarkWireDecode$')
feedback=$(bench ./internal/wire '^BenchmarkControlEncode$')
install=$(bench ./internal/dataplane '^BenchmarkLimitInstall$')

# best_ns <benchmark output lines> — minimum ns/op over the -count runs.
best_ns() {
    printf '%s\n' "$1" | awk 'min == "" || $3 + 0 < min + 0 { min = $3 } END { print min }'
}

# best_by <lines> <field regex> <offset> — group lines by the numeric
# parameter embedded in the benchmark name (shards=N or /batchN) and emit
# "param min_ns" per group, ascending.
best_by() {
    printf '%s\n' "$1" | awk -v re="$2" -v off="$3" '
        match($1, re) {
            p = substr($1, RSTART + off, RLENGTH - off) + 0
            if (!(p in min) || $3 + 0 < min[p] + 0) min[p] = $3
            if (!(p in seen)) { order[++n] = p; seen[p] = 1 }
        }
        END {
            for (i = 1; i <= n; i++) print order[i], min[order[i]]
        }'
}

{
    printf '{\n'
    printf '  "schema": "floc-bench-snapshot/v1",\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "runs": %s,\n' "$BENCH_RUNS"
    printf '  "benchmarks": {\n'
    printf '    "router_enqueue": {"bench": "BenchmarkFLocRouterEnqueue", "ns_per_op": %s},\n' \
        "$(best_ns "$router")"
    printf '    "router_enqueue_batch": [\n'
    best_by "$batch" '/batch[0-9]+' 6 | awk '
        { lines[++n] = sprintf("      {\"batch\": %s, \"ns_per_op\": %s}", $1, $2) }
        END { for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], i < n ? "," : "" }'
    printf '    ],\n'
    printf '    "dataplane_sharded": [\n'
    best_by "$sharded" 'shards=[0-9]+' 7 | awk '
        { lines[++n] = sprintf("      {\"shards\": %s, \"ns_per_op\": %s, \"mpps\": %.3f}", $1, $2, 1000 / $2) }
        END { for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], i < n ? "," : "" }'
    printf '    ],\n'
    printf '    "dropfilter_update": {"bench": "BenchmarkFilterUpdate", "ns_per_op": %s},\n' \
        "$(best_ns "$filter")"
    printf '    "dropfilter_locality": {"bench": "BenchmarkFilterLocality", "ns_per_op": %s},\n' \
        "$(best_ns "$locality")"
    printf '    "wire_decode": {"bench": "BenchmarkWireDecode", "ns_per_op": %s},\n' \
        "$(best_ns "$wire")"
    printf '    "feedback_encode": {"bench": "BenchmarkControlEncode", "ns_per_op": %s},\n' \
        "$(best_ns "$feedback")"
    printf '    "limit_install": {"bench": "BenchmarkLimitInstall", "ns_per_op": %s}\n' \
        "$(best_ns "$install")"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "bench-snapshot: wrote $out" >&2
