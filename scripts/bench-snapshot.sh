#!/bin/sh
# bench-snapshot.sh — run the canonical performance benchmarks and emit a
# machine-readable snapshot, seeding the ROADMAP's perf trajectory
# (BENCH_0.json, BENCH_1.json, ... as the hot-path campaign progresses).
#
# Families captured:
#   router_enqueue     BenchmarkFLocRouterEnqueue        ns/op (admission path)
#   dataplane_sharded  BenchmarkDataplaneEnqueueSharded  ns/op and Mpps at
#                      1/2/4/8 shards (whole-pipeline enqueue-to-admission)
#   dropfilter_update  BenchmarkFilterUpdate             ns/op (RecordDrop)
#   wire_decode        BenchmarkWireDecode               ns/op (codec)
#
# Usage: scripts/bench-snapshot.sh [output.json]   (default BENCH_0.json)
#
# Environment:
#   BENCHTIME=1s    per-benchmark budget (go test -benchtime).
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_0.json}"
BENCHTIME="${BENCHTIME:-1s}"

bench() { # bench <pkg> <regexp>
    echo ">> go test -run='^$' -bench='$2' -benchtime=$BENCHTIME $1" >&2
    go test -run='^$' -bench="$2" -benchtime="$BENCHTIME" "$1" |
        tee /dev/stderr | grep '^Benchmark'
}

router=$(bench . '^BenchmarkFLocRouterEnqueue$')
sharded=$(bench ./internal/dataplane '^BenchmarkDataplaneEnqueueSharded$')
filter=$(bench ./internal/dropfilter '^BenchmarkFilterUpdate$')
wire=$(bench ./internal/wire '^BenchmarkWireDecode$')

# ns_per_op <benchmark output line(s)> — first line's ns/op column.
ns_per_op() { printf '%s\n' "$1" | awk 'NR == 1 { print $3; exit }'; }

{
    printf '{\n'
    printf '  "schema": "floc-bench-snapshot/v1",\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "benchmarks": {\n'
    printf '    "router_enqueue": {"bench": "BenchmarkFLocRouterEnqueue", "ns_per_op": %s},\n' \
        "$(ns_per_op "$router")"
    printf '    "dataplane_sharded": [\n'
    printf '%s\n' "$sharded" | awk '
        /shards=/ {
            match($1, /shards=[0-9]+/)
            shards = substr($1, RSTART + 7, RLENGTH - 7)
            lines[++n] = sprintf("      {\"shards\": %s, \"ns_per_op\": %s, \"mpps\": %.3f}", shards, $3, 1000 / $3)
        }
        END { for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], i < n ? "," : "" }'
    printf '    ],\n'
    printf '    "dropfilter_update": {"bench": "BenchmarkFilterUpdate", "ns_per_op": %s},\n' \
        "$(ns_per_op "$filter")"
    printf '    "wire_decode": {"bench": "BenchmarkWireDecode", "ns_per_op": %s}\n' \
        "$(ns_per_op "$wire")"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "bench-snapshot: wrote $out" >&2
